/**
 * @file
 * Equivalence tests for the two version-chain implementations: the
 * std::vector-backed reference VersionChain (version_chain.hh) and
 * the production arena-backed chains inside VersionStore
 * (mapping_table.hh). Every scenario replays one operation sequence
 * against both and demands identical observable behaviour — return
 * values, chain contents, dropped entries — so the zero-allocation
 * data plane cannot silently drift from the reference semantics.
 *
 * Also covers what the reference cannot: table capacity independence
 * (same contents whatever the initial pre-size), robin-hood erase
 * stress (backward-shift must leave every surviving key findable),
 * and the KeySet used for MilanaServer::keyStateReady_.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ftl/mapping_table.hh"
#include "ftl/version_chain.hh"

using common::Key;
using common::Time;
using common::Version;

namespace {

struct Loc
{
    std::uint64_t cookie = 0;

    bool operator==(const Loc &o) const = default;
};

Version
v(Time ts, common::ClientId c = 1)
{
    return Version{ts, c};
}

/**
 * The reference side: a map of VersionChain, mirroring what the
 * backends did before the arena rewrite.
 */
struct RefStore
{
    std::unordered_map<Key, ftl::VersionChain<Loc>> chains;

    ftl::VersionChain<Loc> &operator[](Key k) { return chains[k]; }
};

/** Dump one chain as (version, cookie) pairs, youngest first. */
std::vector<std::pair<Version, std::uint64_t>>
dump(const ftl::VersionChain<Loc> &chain)
{
    std::vector<std::pair<Version, std::uint64_t>> out;
    for (const auto &e : chain.entries())
        out.emplace_back(e.version, e.loc.cookie);
    return out;
}

std::vector<std::pair<Version, std::uint64_t>>
dump(ftl::VersionStore<Loc>::ChainRef chain)
{
    std::vector<std::pair<Version, std::uint64_t>> out;
    if (!chain)
        return out;
    for (const auto &e : chain)
        out.emplace_back(e.version, e.loc.cookie);
    return out;
}

/**
 * Full-store comparison: every key in the reference must have an
 * identical chain in the store, and the store must not hold extras.
 */
void
expectEquivalent(RefStore &ref, ftl::VersionStore<Loc> &store)
{
    std::size_t ref_nonempty = 0;
    for (auto &[key, chain] : ref.chains) {
        if (chain.empty()) {
            EXPECT_FALSE(store.find(key))
                << "key " << key << " should be absent or empty";
            continue;
        }
        ++ref_nonempty;
        auto got = store.find(key);
        ASSERT_TRUE(got) << "key " << key << " missing from store";
        EXPECT_EQ(dump(chain), dump(got)) << "key " << key;
    }
    std::size_t store_nonempty = 0;
    store.forEach([&](Key, ftl::VersionStore<Loc>::ChainRef chain) {
        store_nonempty += !chain.empty();
    });
    EXPECT_EQ(ref_nonempty, store_nonempty);
}

} // namespace

// ------------------------------------------------- scenario replays
// The ftl_test chain scenarios, replayed against both implementations.

TEST(StoreSemantics, InsertKeepsDescendingOrder)
{
    RefStore ref;
    ftl::VersionStore<Loc> store;
    const Key k = 7;
    // Out-of-order arrivals, as replication delivers them.
    for (Time ts : {300, 100, 500, 200, 400}) {
        const bool a = ref[k].insert(v(ts), Loc{unsigned(ts)});
        const bool b =
            store.getOrCreate(k).insert(v(ts), Loc{unsigned(ts)});
        EXPECT_EQ(a, b) << "ts " << ts;
    }
    expectEquivalent(ref, store);
    // Snapshot cuts agree.
    for (Time at : {50, 150, 250, 350, 450, 550}) {
        const auto *re = ref[k].findAt(v(at, 9));
        const auto *se = store.find(k).findAt(v(at, 9));
        ASSERT_EQ(re == nullptr, se == nullptr) << "at " << at;
        if (re)
            EXPECT_EQ(re->loc, se->loc) << "at " << at;
    }
}

TEST(StoreSemantics, DupReplayIgnoredOnBothPaths)
{
    RefStore ref;
    ftl::VersionStore<Loc> store;
    EXPECT_TRUE(ref[4].insert(v(100), Loc{1}));
    EXPECT_TRUE(store.getOrCreate(4).insert(v(100), Loc{1}));
    // Same stamp, different payload: both must refuse it.
    EXPECT_FALSE(ref[4].insert(v(100), Loc{2}));
    EXPECT_FALSE(store.getOrCreate(4).insert(v(100), Loc{2}));
    // append() sees the duplicate too.
    EXPECT_FALSE(ref[4].append(v(100), Loc{3}));
    EXPECT_FALSE(store.find(4).append(v(100), Loc{3}));
    expectEquivalent(ref, store);
    EXPECT_EQ(store.versionCount(4), 1u);
    EXPECT_EQ(store.find(4).youngest().loc, (Loc{1}));
}

TEST(StoreSemantics, WatermarkPruneMatchesReference)
{
    RefStore ref;
    ftl::VersionStore<Loc> store;
    const Key k = 2;
    for (int i = 1; i <= 6; ++i) {
        ref[k].insert(v(i * 100), Loc{unsigned(i)});
        store.getOrCreate(k).insert(v(i * 100), Loc{unsigned(i)});
    }
    // Section 3.1: keep the youngest version <= watermark plus all
    // younger ones; both sides must drop the same entries.
    std::vector<std::uint64_t> ref_drops, store_drops;
    ref[k].pruneBelowWatermark(
        450, [&](const auto &e) { ref_drops.push_back(e.loc.cookie); });
    store.find(k).pruneBelowWatermark(
        450, [&](const auto &e) { store_drops.push_back(e.loc.cookie); });
    EXPECT_EQ(ref_drops, store_drops);
    EXPECT_EQ(ref_drops, (std::vector<std::uint64_t>{3, 2, 1}));
    expectEquivalent(ref, store);

    // Watermark below every stamp: nothing more to drop.
    ref_drops.clear();
    store_drops.clear();
    ref[k].pruneBelowWatermark(
        1, [&](const auto &e) { ref_drops.push_back(e.loc.cookie); });
    store.find(k).pruneBelowWatermark(
        1, [&](const auto &e) { store_drops.push_back(e.loc.cookie); });
    EXPECT_TRUE(ref_drops.empty());
    EXPECT_TRUE(store_drops.empty());
    expectEquivalent(ref, store);
}

TEST(StoreSemantics, GcRelocateUpdatesLocator)
{
    RefStore ref;
    ftl::VersionStore<Loc> store;
    for (Time ts : {100, 200, 300}) {
        ref[5].insert(v(ts), Loc{unsigned(ts)});
        store.getOrCreate(5).insert(v(ts), Loc{unsigned(ts)});
    }
    // GC moved the v200 record to a new physical location.
    EXPECT_TRUE(ref[5].relocate(v(200), Loc{999}));
    EXPECT_TRUE(store.find(5).relocate(v(200), Loc{999}));
    // Relocating a missing stamp fails on both.
    EXPECT_FALSE(ref[5].relocate(v(250), Loc{1}));
    EXPECT_FALSE(store.find(5).relocate(v(250), Loc{1}));
    // find() exposes the moved locator for in-place updates.
    EXPECT_EQ(store.find(5).find(v(200))->loc, (Loc{999}));
    expectEquivalent(ref, store);
}

TEST(StoreSemantics, RemoveAndEraseMatchReference)
{
    RefStore ref;
    ftl::VersionStore<Loc> store;
    for (Time ts : {100, 200, 300}) {
        ref[9].insert(v(ts), Loc{unsigned(ts)});
        store.getOrCreate(9).insert(v(ts), Loc{unsigned(ts)});
    }
    EXPECT_TRUE(ref[9].remove(v(200)));
    EXPECT_TRUE(store.find(9).remove(v(200)));
    EXPECT_FALSE(ref[9].remove(v(200)));
    EXPECT_FALSE(store.find(9).remove(v(200)));
    expectEquivalent(ref, store);
    // Dropping the whole key.
    ref.chains.erase(9);
    EXPECT_TRUE(store.erase(9));
    EXPECT_FALSE(store.erase(9));
    EXPECT_FALSE(store.find(9));
    EXPECT_EQ(store.versionCount(9), 0u);
    expectEquivalent(ref, store);
}

TEST(StoreSemantics, BulkAppendEqualsInsert)
{
    // Loader discipline: versions arrive newest-first per key, so
    // append() must produce exactly what insert() would.
    RefStore ref;
    ftl::VersionStore<Loc> store(64);
    for (Key k = 0; k < 50; ++k) {
        for (int i = 8; i >= 1; --i) {
            ref[k].insert(v(i * 10, k % 3), Loc{k * 100 + unsigned(i)});
            store.getOrCreate(k).append(v(i * 10, k % 3),
                                        Loc{k * 100 + unsigned(i)});
        }
    }
    expectEquivalent(ref, store);
    // Out-of-order tail: append falls back to sorted insertion.
    ref[1].append(v(55), Loc{1});
    store.find(1).append(v(55), Loc{1});
    expectEquivalent(ref, store);
}

// ------------------------------------------------- randomized replay

TEST(StoreSemantics, RandomizedOpStreamEquivalence)
{
    std::mt19937_64 rng(20260808);
    RefStore ref;
    ftl::VersionStore<Loc> store; // default capacity: exercises grow
    constexpr Key kKeys = 257;    // prime, off the pow2 grid
    std::uint64_t cookie = 0;
    for (int step = 0; step < 60000; ++step) {
        const Key key = rng() % kKeys;
        const Time ts = 1 + static_cast<Time>(rng() % 512);
        const auto op = rng() % 100;
        if (op < 45) {
            const bool a = ref[key].insert(v(ts), Loc{++cookie});
            const bool b =
                store.getOrCreate(key).insert(v(ts), Loc{cookie});
            ASSERT_EQ(a, b) << "step " << step;
        } else if (op < 60) {
            auto chain = store.find(key);
            const auto *re = ref[key].findAt(v(ts, 9));
            const auto *se = chain ? chain.findAt(v(ts, 9)) : nullptr;
            ASSERT_EQ(re == nullptr, se == nullptr) << "step " << step;
            if (re)
                ASSERT_EQ(re->loc, se->loc) << "step " << step;
        } else if (op < 70) {
            const bool a = ref[key].remove(v(ts));
            auto chain = store.find(key);
            const bool b = chain ? chain.remove(v(ts)) : false;
            ASSERT_EQ(a, b) << "step " << step;
        } else if (op < 80) {
            const bool a = ref[key].relocate(v(ts), Loc{++cookie});
            auto chain = store.find(key);
            const bool b = chain ? chain.relocate(v(ts), Loc{cookie})
                                 : false;
            ASSERT_EQ(a, b) << "step " << step;
        } else if (op < 90) {
            std::uint64_t a_drops = 0, b_drops = 0;
            ref[key].pruneBelowWatermark(
                ts, [&](const auto &) { ++a_drops; });
            if (auto chain = store.find(key))
                chain.pruneBelowWatermark(
                    ts, [&](const auto &) { ++b_drops; });
            ASSERT_EQ(a_drops, b_drops) << "step " << step;
        } else if (op < 95) {
            const bool a = ref[key].contains(v(ts));
            auto chain = store.find(key);
            const bool b = chain ? chain.contains(v(ts)) : false;
            ASSERT_EQ(a, b) << "step " << step;
        } else {
            const bool had = !ref[key].empty();
            ref.chains.erase(key);
            ASSERT_EQ(store.erase(key), had) << "step " << step;
        }
        if (step % 7919 == 0)
            expectEquivalent(ref, store);
    }
    expectEquivalent(ref, store);
}

// --------------------------------------------- capacity independence

TEST(StoreSemantics, ContentsIndependentOfInitialCapacity)
{
    // The same stream into tables pre-sized 0 / exact / oversized must
    // produce identical contents and identical lookup results.
    auto load = [](ftl::VersionStore<Loc> &store) {
        std::mt19937_64 rng(42);
        for (int i = 0; i < 20000; ++i) {
            const Key key = rng() % 4096;
            const Time ts = 1 + static_cast<Time>(rng() % 64);
            store.getOrCreate(key).insert(v(ts), Loc{key * 1000 + ts});
            if (i % 5 == 0)
                if (auto c = store.find(rng() % 4096))
                    c.pruneBelowWatermark(8, [](const auto &) {});
        }
    };
    ftl::VersionStore<Loc> tiny;
    ftl::VersionStore<Loc> exact(4096);
    ftl::VersionStore<Loc> huge(1u << 16);
    load(tiny);
    load(exact);
    load(huge);
    ASSERT_EQ(tiny.size(), exact.size());
    ASSERT_EQ(tiny.size(), huge.size());
    EXPECT_LT(exact.capacity(), huge.capacity());
    for (Key key = 0; key < 4096; ++key) {
        EXPECT_EQ(dump(tiny.find(key)), dump(exact.find(key)))
            << "key " << key;
        EXPECT_EQ(dump(tiny.find(key)), dump(huge.find(key)))
            << "key " << key;
    }
}

TEST(StoreSemantics, ReserveKeysNeverShrinksOrLosesData)
{
    ftl::VersionStore<Loc> store;
    for (Key k = 0; k < 1000; ++k)
        store.getOrCreate(k).insert(v(10), Loc{k});
    const std::size_t cap = store.capacity();
    store.reserveKeys(10); // smaller: no-op
    EXPECT_EQ(store.capacity(), cap);
    store.reserveKeys(100000); // bigger: rehash keeps every chain
    EXPECT_GT(store.capacity(), cap);
    for (Key k = 0; k < 1000; ++k) {
        ASSERT_TRUE(store.find(k)) << "key " << k;
        EXPECT_EQ(store.find(k).youngest().loc, (Loc{k}));
    }
}

// ---------------------------------------------- robin-hood erase stress

TEST(StoreSemantics, EraseChurnKeepsSurvivorsFindable)
{
    // Backward-shift erase under heavy collision pressure: insert and
    // erase in waves, checking the surviving set exactly each wave.
    std::mt19937_64 rng(7);
    ftl::VersionStore<Loc> store; // small start: erases + grows mix
    std::set<Key> alive;
    for (int wave = 0; wave < 40; ++wave) {
        for (int i = 0; i < 500; ++i) {
            const Key key = rng() % 2048;
            store.getOrCreate(key).insert(v(wave + 1), Loc{key});
            alive.insert(key);
        }
        for (int i = 0; i < 400; ++i) {
            const Key key = rng() % 2048;
            ASSERT_EQ(store.erase(key), alive.erase(key) > 0)
                << "wave " << wave;
        }
        ASSERT_EQ(store.size(), alive.size()) << "wave " << wave;
        for (Key key = 0; key < 2048; ++key)
            ASSERT_EQ(static_cast<bool>(store.find(key)),
                      alive.count(key) > 0)
                << "wave " << wave << " key " << key;
    }
}

TEST(StoreSemantics, ClearRetainsCapacityDropsContents)
{
    ftl::VersionStore<Loc> store(1000);
    for (Key k = 0; k < 1000; ++k)
        for (Time ts = 1; ts <= 4; ++ts)
            store.getOrCreate(k).insert(v(ts * 10), Loc{k});
    const std::size_t cap = store.capacity();
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.capacity(), cap);
    for (Key k = 0; k < 1000; ++k)
        ASSERT_FALSE(store.find(k));
    // Reusable after clear.
    store.getOrCreate(3).insert(v(5), Loc{3});
    EXPECT_EQ(store.versionCount(3), 1u);
}

// --------------------------------------------------------- KeySet

TEST(KeySet, InsertContainsChurnMatchesReference)
{
    std::mt19937_64 rng(99);
    ftl::KeySet set;
    std::unordered_set<Key> ref;
    for (int i = 0; i < 50000; ++i) {
        const Key key = rng() % 10000;
        if (rng() % 3 == 0) {
            ASSERT_EQ(set.contains(key), ref.count(key) > 0)
                << "step " << i;
        } else {
            set.insert(key);
            ref.insert(key);
        }
    }
    ASSERT_EQ(set.size(), ref.size());
    for (Key key = 0; key < 10000; ++key)
        ASSERT_EQ(set.contains(key), ref.count(key) > 0)
            << "key " << key;
    set.clear();
    EXPECT_EQ(set.size(), 0u);
    for (Key key = 0; key < 10000; ++key)
        ASSERT_FALSE(set.contains(key));
}

TEST(KeySet, ReservePreservesMembership)
{
    ftl::KeySet set;
    for (Key k = 0; k < 5000; ++k)
        set.insert(k * 2654435761ull);
    set.reserve(1u << 18);
    for (Key k = 0; k < 5000; ++k)
        ASSERT_TRUE(set.contains(k * 2654435761ull)) << "key " << k;
    EXPECT_EQ(set.size(), 5000u);
}
