/**
 * @file
 * MILANA integration tests: transaction semantics (atomicity,
 * snapshot isolation, serializability), local validation, OCC
 * conflicts, the cooperative termination protocol, leases, and
 * primary failover recovery.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "milana/client.hh"
#include "workload/cluster.hh"

using namespace workload;
using common::kMillisecond;
using common::kSecond;
using common::Key;
using milana::CommitResult;
using milana::MilanaClient;
using milana::Transaction;

namespace {

ClusterConfig
smallConfig(std::uint32_t shards = 3, std::uint32_t replicas = 3,
            std::uint32_t clients = 4)
{
    ClusterConfig cfg;
    cfg.numShards = shards;
    cfg.replicasPerShard = replicas;
    cfg.numClients = clients;
    cfg.backend = BackendKind::Dram;
    cfg.clocks = ClockKind::Perfect;
    cfg.numKeys = 2000;
    return cfg;
}

/** Run one coroutine to completion on the cluster's simulator. */
template <typename Fn>
void
drive(Cluster &cluster, Fn fn)
{
    sim::spawn(fn());
    cluster.sim().run();
}

} // namespace

TEST(Milana, ReadWriteTransactionCommits)
{
    Cluster cluster(smallConfig());
    cluster.populate();
    cluster.start();
    CommitResult result{};
    drive(cluster, [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto txn = client.beginTransaction();
        auto read = co_await client.get(txn, 1);
        EXPECT_TRUE(read.ok);
        EXPECT_TRUE(read.found);
        EXPECT_EQ(read.value, "init");
        client.put(txn, 1, "updated");
        result = co_await client.commitTransaction(txn);
        cluster.sim().requestStop();
    });
    EXPECT_EQ(result, CommitResult::Committed);
}

TEST(Milana, CommittedWritesVisibleToLaterTransactions)
{
    Cluster cluster(smallConfig());
    cluster.populate();
    cluster.start();
    std::string seen;
    drive(cluster, [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto t1 = client.beginTransaction();
        client.put(t1, 5, "newval");
        auto r1 = co_await client.commitTransaction(t1);
        EXPECT_EQ(r1, CommitResult::Committed);
        // The decision is asynchronous; give it a moment to apply.
        co_await sim::sleepFor(cluster.sim(), 20 * kMillisecond);
        auto t2 = client.beginTransaction();
        auto read = co_await client.get(t2, 5);
        seen = read.value;
        (void)co_await client.commitTransaction(t2);
        cluster.sim().requestStop();
    });
    EXPECT_EQ(seen, "newval");
}

TEST(Milana, ReadYourOwnBufferedWrites)
{
    Cluster cluster(smallConfig());
    cluster.populate();
    cluster.start();
    std::string seen;
    drive(cluster, [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto txn = client.beginTransaction();
        client.put(txn, 9, "buffered");
        auto read = co_await client.get(txn, 9);
        seen = read.value;
        client.abortTransaction(txn);
        cluster.sim().requestStop();
    });
    EXPECT_EQ(seen, "buffered");
}

TEST(Milana, ReadOnlyCommitsLocallyWithZeroMessages)
{
    Cluster cluster(smallConfig());
    cluster.populate();
    cluster.start();
    CommitResult result{};
    drive(cluster, [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto txn = client.beginTransaction();
        (void)co_await client.get(txn, 1);
        (void)co_await client.get(txn, 2);
        const auto prepares_before =
            cluster.serverStats().counterValue("milana.prepares");
        result = co_await client.commitTransaction(txn);
        const auto prepares_after =
            cluster.serverStats().counterValue("milana.prepares");
        EXPECT_EQ(prepares_before, prepares_after); // no 2PC at all
        cluster.sim().requestStop();
    });
    EXPECT_EQ(result, CommitResult::Committed);
    EXPECT_GT(cluster.clientStats().counterValue(
                  "txn.local_validations"),
              0u);
}

TEST(Milana, WriteWriteConflictAborts)
{
    Cluster cluster(smallConfig(1, 1, 2));
    cluster.populate();
    cluster.start();
    int committed = 0, aborted = 0;
    drive(cluster, [&]() -> sim::Task<void> {
        // Two transactions from different clients race on key 7; both
        // read then write it. Serializability allows at most one to
        // commit.
        auto worker = [&](std::uint32_t c) -> sim::Task<void> {
            auto &client = cluster.client(c);
            auto txn = client.beginTransaction();
            (void)co_await client.get(txn, 7);
            client.put(txn, 7, "c" + std::to_string(c));
            auto r = co_await client.commitTransaction(txn);
            if (r == CommitResult::Committed)
                ++committed;
            else
                ++aborted;
        };
        sim::spawn(worker(0));
        sim::spawn(worker(1));
        co_await sim::sleepFor(cluster.sim(), kSecond);
        cluster.sim().requestStop();
    });
    EXPECT_EQ(committed + aborted, 2);
    EXPECT_LE(committed, 1);
    EXPECT_GE(aborted, 1);
}

TEST(Milana, SnapshotIsolationAcrossConcurrentWriter)
{
    Cluster cluster(smallConfig());
    cluster.populate();
    cluster.start();
    std::string first, second;
    drive(cluster, [&]() -> sim::Task<void> {
        auto &reader = cluster.client(0);
        auto &writer = cluster.client(1);

        auto ro = reader.beginTransaction();
        auto r1 = co_await reader.get(ro, 11);
        first = r1.value;

        // A writer commits a new version after the reader's begin.
        auto w = writer.beginTransaction();
        writer.put(w, 11, "after-snapshot");
        auto wr = co_await writer.commitTransaction(w);
        EXPECT_EQ(wr, CommitResult::Committed);
        co_await sim::sleepFor(cluster.sim(), 20 * kMillisecond);

        // The reader must still see its snapshot (multi-version).
        auto r2 = co_await reader.get(ro, 12);
        (void)r2;
        auto r3 = co_await reader.get(ro, 11); // cached
        second = r3.value;
        auto rr = co_await reader.commitTransaction(ro);
        EXPECT_EQ(rr, CommitResult::Committed);
        cluster.sim().requestStop();
    });
    EXPECT_EQ(first, "init");
    EXPECT_EQ(second, "init");
}

TEST(Milana, AbortDiscardsBufferedWrites)
{
    Cluster cluster(smallConfig());
    cluster.populate();
    cluster.start();
    std::string seen;
    drive(cluster, [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto t1 = client.beginTransaction();
        client.put(t1, 3, "discarded");
        client.abortTransaction(t1);
        auto t2 = client.beginTransaction();
        auto read = co_await client.get(t2, 3);
        seen = read.value;
        (void)co_await client.commitTransaction(t2);
        cluster.sim().requestStop();
    });
    EXPECT_EQ(seen, "init");
}

TEST(Milana, CrossShardTransactionIsAtomic)
{
    Cluster cluster(smallConfig(3, 1, 2));
    cluster.populate();
    cluster.start();
    // Write a batch of keys that hash across shards in one
    // transaction; afterwards either all or none are visible.
    drive(cluster, [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto txn = client.beginTransaction();
        for (Key k = 100; k < 110; ++k)
            client.put(txn, k, "batch");
        auto r = co_await client.commitTransaction(txn);
        EXPECT_EQ(r, CommitResult::Committed);
        co_await sim::sleepFor(cluster.sim(), 50 * kMillisecond);

        auto check = client.beginTransaction();
        int updated = 0;
        for (Key k = 100; k < 110; ++k) {
            auto read = co_await client.get(check, k);
            updated += (read.value == "batch");
        }
        EXPECT_EQ(updated, 10);
        (void)co_await client.commitTransaction(check);
        cluster.sim().requestStop();
    });
}

TEST(Milana, SerializabilityBankInvariant)
{
    // The classic audit test: concurrent transfers move value between
    // accounts; read-only audits must always see the same total.
    Cluster cluster(smallConfig(3, 1, 4));
    cluster.populate();
    cluster.start();
    constexpr Key kAccounts = 16;
    constexpr int kInitial = 100;

    bool audit_violation = false;
    int audits_done = 0;

    drive(cluster, [&]() -> sim::Task<void> {
        auto &setup = cluster.client(0);
        auto init = setup.beginTransaction();
        for (Key a = 0; a < kAccounts; ++a)
            setup.put(init, a, std::to_string(kInitial));
        auto ir = co_await setup.commitTransaction(init);
        EXPECT_EQ(ir, CommitResult::Committed);
        co_await sim::sleepFor(cluster.sim(), 50 * kMillisecond);

        auto transferer = [&](std::uint32_t c) -> sim::Task<void> {
            auto &client = cluster.client(c);
            common::Rng rng(c + 77);
            for (int i = 0; i < 40; ++i) {
                const Key from = rng.nextBounded(kAccounts);
                const Key to = rng.nextBounded(kAccounts);
                if (from == to)
                    continue;
                auto txn = client.beginTransaction();
                auto rf = co_await client.get(txn, from);
                auto rt = co_await client.get(txn, to);
                if (!rf.ok || !rt.ok) {
                    client.abortTransaction(txn);
                    continue;
                }
                const int vf = std::stoi(rf.value);
                const int vt = std::stoi(rt.value);
                client.put(txn, from, std::to_string(vf - 1));
                client.put(txn, to, std::to_string(vt + 1));
                (void)co_await client.commitTransaction(txn);
            }
        };
        auto auditor = [&]() -> sim::Task<void> {
            auto &client = cluster.client(3);
            for (int i = 0; i < 30; ++i) {
                auto txn = client.beginTransaction();
                long total = 0;
                bool ok = true;
                for (Key a = 0; a < kAccounts && ok; ++a) {
                    auto r = co_await client.get(txn, a);
                    ok = r.ok && r.found;
                    if (ok)
                        total += std::stoi(r.value);
                }
                auto cr = co_await client.commitTransaction(txn);
                if (ok && cr == CommitResult::Committed) {
                    ++audits_done;
                    if (total != kAccounts * kInitial)
                        audit_violation = true;
                }
                co_await sim::sleepFor(cluster.sim(), kMillisecond);
            }
        };
        sim::spawn(transferer(1));
        sim::spawn(transferer(2));
        sim::spawn(auditor());
        co_await sim::sleepFor(cluster.sim(), 5 * kSecond);
        cluster.sim().requestStop();
    });
    EXPECT_GT(audits_done, 5);
    EXPECT_FALSE(audit_violation);
}

TEST(Milana, CtpResolvesOrphanedPrepare)
{
    // A client crashes after its prepares land but before any decision
    // is delivered. The participants' cooperative termination protocol
    // must resolve the transaction (all voted commit -> commit) and
    // unblock the keys.
    Cluster cluster(smallConfig(2, 1, 2));
    cluster.populate();
    cluster.start();

    drive(cluster, [&]() -> sim::Task<void> {
        auto &doomed = cluster.client(0);
        auto txn = doomed.beginTransaction();
        for (Key k = 0; k < 12; ++k)
            doomed.put(txn, k, "orphan");
        // Crash the client node mid-commit: prepares already in flight
        // will be delivered, but the client's decision messages (and
        // the vote responses) are dropped.
        sim::spawn([](MilanaClient *client,
                      Transaction *txn) -> sim::Task<void> {
            (void)co_await client->commitTransaction(*txn);
        }(&doomed, &txn));
        // 60 us: the prepare requests are in flight (sent at ~0, one
        // way ~50 us) but the votes cannot have returned yet.
        co_await sim::sleepFor(cluster.sim(),
                               60 * common::kMicrosecond);
        cluster.network().setNodeDown(doomed.nodeId(), true);

        // Give the CTP time to fire (timeout 50 ms + scan period).
        co_await sim::sleepFor(cluster.sim(), 500 * kMillisecond);

        // The transaction table must hold no prepared entries and the
        // keys must be writable again by another client.
        for (common::ShardId s = 0; s < 2; ++s) {
            EXPECT_EQ(cluster.primary(s).txnTable().size(), 0u)
                << "shard " << s << " still blocked";
        }
        auto &other = cluster.client(1);
        auto txn2 = other.beginTransaction();
        (void)co_await other.get(txn2, 0);
        other.put(txn2, 0, "unblocked");
        auto r = co_await other.commitTransaction(txn2);
        EXPECT_EQ(r, CommitResult::Committed);
        cluster.sim().requestStop();
    });
    common::StatSet servers = cluster.serverStats();
    EXPECT_GT(servers.counterValue("milana.ctp_invocations"), 0u);
}

TEST(Milana, FailoverRecoversCommittedState)
{
    Cluster cluster(smallConfig(1, 3, 2));
    cluster.populate();
    cluster.start();

    drive(cluster, [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto txn = client.beginTransaction();
        client.put(txn, 42, "survives");
        auto r = co_await client.commitTransaction(txn);
        EXPECT_EQ(r, CommitResult::Committed);
        co_await sim::sleepFor(cluster.sim(), 100 * kMillisecond);

        // Crash the primary (node 0) and promote the first backup.
        const common::NodeId old_primary =
            cluster.master().primaryOf(0);
        const common::NodeId new_primary =
            cluster.master().backupsOf(0)[0];
        cluster.crashServer(old_primary);
        co_await cluster.failover(0, new_primary);

        // After recovery (incl. the lease wait), reads and writes work
        // against the new primary and see the committed value.
        auto txn2 = client.beginTransaction();
        auto read = co_await client.get(txn2, 42);
        EXPECT_TRUE(read.ok);
        EXPECT_EQ(read.value, "survives");
        client.put(txn2, 42, "post-failover");
        auto r2 = co_await client.commitTransaction(txn2);
        EXPECT_EQ(r2, CommitResult::Committed);
        cluster.sim().requestStop();
    });
}

TEST(Milana, FailoverResolvesInDoubtCrossShardTxn)
{
    // Prepare lands on shards A and B; the commit decision reaches
    // only B before A's primary crashes. The promoted A-replica must
    // learn the outcome from B during recovery (Algorithm 2 + CTP).
    Cluster cluster(smallConfig(2, 3, 2));
    cluster.populate();
    cluster.start();

    // Find one key per shard.
    Key key_a = 0, key_b = 0;
    for (Key k = 0; k < 100; ++k) {
        if (cluster.master().shardMap().shardOf(k) == 0)
            key_a = k;
        else
            key_b = k;
    }

    drive(cluster, [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto txn = client.beginTransaction();
        client.put(txn, key_a, "in-doubt");
        client.put(txn, key_b, "in-doubt");
        auto r = co_await client.commitTransaction(txn);
        EXPECT_EQ(r, CommitResult::Committed);

        // Immediately crash shard 0's primary: with high probability
        // the async decision reached B but not necessarily A; either
        // way recovery must converge to commit.
        const common::NodeId a_primary = cluster.master().primaryOf(0);
        cluster.crashServer(a_primary);
        const common::NodeId promoted =
            cluster.master().backupsOf(0)[0];
        co_await cluster.failover(0, promoted);
        co_await sim::sleepFor(cluster.sim(), 500 * kMillisecond);

        auto check = client.beginTransaction();
        auto ra = co_await client.get(check, key_a);
        auto rb = co_await client.get(check, key_b);
        EXPECT_EQ(ra.value, "in-doubt");
        EXPECT_EQ(rb.value, "in-doubt");
        (void)co_await client.commitTransaction(check);
        cluster.sim().requestStop();
    });
}

TEST(Milana, RemoteValidationPathForReadOnly)
{
    auto cfg = smallConfig();
    cfg.localValidation = false; // Figure 8's "w/o LV" configuration
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    CommitResult result{};
    drive(cluster, [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto txn = client.beginTransaction();
        (void)co_await client.get(txn, 1);
        (void)co_await client.get(txn, 2);
        result = co_await client.commitTransaction(txn);
        cluster.sim().requestStop();
    });
    EXPECT_EQ(result, CommitResult::Committed);
    // Remote validation means the servers saw prepare requests.
    EXPECT_GT(cluster.serverStats().counterValue("milana.prepares"), 0u);
    EXPECT_EQ(cluster.clientStats().counterValue(
                  "txn.local_validations"),
              0u);
}

TEST(Milana, LeaseRenewalRuns)
{
    Cluster cluster(smallConfig(1, 3, 2));
    cluster.populate();
    cluster.start();
    drive(cluster, [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto txn = client.beginTransaction();
        (void)co_await client.get(txn, 1);
        (void)co_await client.commitTransaction(txn);
        co_await sim::sleepFor(cluster.sim(), 2 * kSecond);
        cluster.sim().requestStop();
    });
    EXPECT_GT(cluster.serverStats().counterValue(
                  "milana.lease_renewals"),
              0u);
    EXPECT_GT(cluster.primary(0).leaseUntil(), 0);
}

TEST(Milana, ReplicaReadsValidateAtPrimary)
{
    // Section 4.6 relaxation: a read-write-hinted transaction reads
    // from arbitrary replicas; commit still validates at the primary.
    auto cfg = smallConfig(2, 3, 2);
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    // Rebuild a client with the relaxation enabled.
    milana::MilanaClient::TxnConfig tcfg;
    tcfg.readFromAnyReplica = true;
    semel::Client::Config ccfg;
    clocksync::PerfectClock clock(cluster.sim());
    milana::MilanaClient relaxed(cluster.sim(), cluster.network(), 2000,
                                 99, clock, cluster.master(),
                                 cluster.directory(), ccfg, tcfg);
    CommitResult result{};
    drive(cluster, [&]() -> sim::Task<void> {
        auto txn = relaxed.beginTransaction(milana::TxnHint::ReadWrite);
        auto r = co_await relaxed.get(txn, 3);
        EXPECT_TRUE(r.ok);
        EXPECT_EQ(r.value, "init");
        relaxed.put(txn, 3, "via-replica-read");
        result = co_await relaxed.commitTransaction(txn);
        cluster.sim().requestStop();
    });
    EXPECT_EQ(result, CommitResult::Committed);
    EXPECT_GT(relaxed.stats().counterValue("txn.replica_reads"), 0u);
}

TEST(Milana, StaleReplicaReadAborts)
{
    // A replica read that returns stale data must fail validation at
    // the primary rather than commit a non-serializable transaction.
    auto cfg = smallConfig(1, 3, 2);
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    milana::MilanaClient::TxnConfig tcfg;
    tcfg.readFromAnyReplica = true;
    semel::Client::Config ccfg;
    clocksync::PerfectClock clock(cluster.sim());
    milana::MilanaClient relaxed(cluster.sim(), cluster.network(), 2001,
                                 98, clock, cluster.master(),
                                 cluster.directory(), ccfg, tcfg);
    drive(cluster, [&]() -> sim::Task<void> {
        // Cut replication to one backup so it stays stale, then
        // repeatedly update key 5 through the normal client.
        auto &writer = cluster.client(0);
        for (int i = 0; i < 5; ++i) {
            auto w = writer.beginTransaction();
            writer.put(w, 5, "fresh" + std::to_string(i));
            (void)co_await writer.commitTransaction(w);
        }
        co_await sim::sleepFor(cluster.sim(), 50 * kMillisecond);

        // Hinted transactions read from random replicas; across
        // attempts some read stale snapshots, but every COMMITTED
        // outcome must reflect primary-validated state.
        int commits = 0, aborts = 0;
        for (int i = 0; i < 20; ++i) {
            auto txn =
                relaxed.beginTransaction(milana::TxnHint::ReadWrite);
            auto r = co_await relaxed.get(txn, 5);
            if (!r.ok) {
                relaxed.abortTransaction(txn);
                continue;
            }
            relaxed.put(txn, 5, "rw" + std::to_string(i));
            auto res = co_await relaxed.commitTransaction(txn);
            (res == CommitResult::Committed ? commits : aborts)++;
        }
        EXPECT_GT(commits, 0);
        cluster.sim().requestStop();
    });
}

TEST(Milana, InterTxnCacheServesRepeatReads)
{
    auto cfg = smallConfig(2, 1, 1);
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    milana::MilanaClient::TxnConfig tcfg;
    tcfg.interTxnCacheCapacity = 128;
    semel::Client::Config ccfg;
    clocksync::PerfectClock clock(cluster.sim());
    milana::MilanaClient cachy(cluster.sim(), cluster.network(), 2002,
                               97, clock, cluster.master(),
                               cluster.directory(), ccfg, tcfg);
    drive(cluster, [&]() -> sim::Task<void> {
        // First hinted txn populates the cache.
        auto t1 = cachy.beginTransaction(milana::TxnHint::ReadWrite);
        (void)co_await cachy.get(t1, 4);
        cachy.put(t1, 9, "x");
        (void)co_await cachy.commitTransaction(t1);

        // Second hinted txn reads key 4 from cache: zero server gets.
        const auto gets_before =
            cachy.stats().counterValue("client.gets");
        auto t2 = cachy.beginTransaction(milana::TxnHint::ReadWrite);
        auto r = co_await cachy.get(t2, 4);
        EXPECT_TRUE(r.ok);
        EXPECT_EQ(cachy.stats().counterValue("client.gets"),
                  gets_before);
        EXPECT_GT(cachy.stats().counterValue("txn.cache_hits"), 0u);
        cachy.put(t2, 9, "y");
        auto res = co_await cachy.commitTransaction(t2);
        EXPECT_EQ(res, CommitResult::Committed);
        cluster.sim().requestStop();
    });
}

TEST(Milana, StaleCacheEntryAbortsThenRecovers)
{
    auto cfg = smallConfig(1, 1, 2);
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    milana::MilanaClient::TxnConfig tcfg;
    tcfg.interTxnCacheCapacity = 128;
    semel::Client::Config ccfg;
    clocksync::PerfectClock clock(cluster.sim());
    milana::MilanaClient cachy(cluster.sim(), cluster.network(), 2003,
                               96, clock, cluster.master(),
                               cluster.directory(), ccfg, tcfg);
    drive(cluster, [&]() -> sim::Task<void> {
        // Warm the cache on key 6.
        auto t1 = cachy.beginTransaction(milana::TxnHint::ReadWrite);
        (void)co_await cachy.get(t1, 6);
        cachy.put(t1, 7, "warm");
        (void)co_await cachy.commitTransaction(t1);

        // Another client updates key 6 behind the cache's back.
        auto &other = cluster.client(0);
        auto w = other.beginTransaction();
        other.put(w, 6, "invalidating");
        (void)co_await other.commitTransaction(w);
        co_await sim::sleepFor(cluster.sim(), 50 * kMillisecond);

        // The cached read is now stale: the hinted txn must abort...
        auto t2 = cachy.beginTransaction(milana::TxnHint::ReadWrite);
        (void)co_await cachy.get(t2, 6); // cache hit, stale
        cachy.put(t2, 6, "mine");
        auto r2 = co_await cachy.commitTransaction(t2);
        EXPECT_EQ(r2, CommitResult::Aborted);

        // ...and the abort invalidates the entry, so the retry reads
        // fresh data and commits.
        auto t3 = cachy.beginTransaction(milana::TxnHint::ReadWrite);
        auto fresh = co_await cachy.get(t3, 6);
        EXPECT_EQ(fresh.value, "invalidating");
        cachy.put(t3, 6, "mine-after-retry");
        auto r3 = co_await cachy.commitTransaction(t3);
        EXPECT_EQ(r3, CommitResult::Committed);
        cluster.sim().requestStop();
    });
}

TEST(Milana, ConcurrentDecisionsAreIdempotent)
{
    // Regression: a duplicate/CTP decision racing the client's own
    // decision must not resolve the transaction entry out from under
    // the in-flight apply (use-after-free class).
    Cluster cluster(smallConfig(1, 1, 1));
    cluster.populate();
    cluster.start();
    drive(cluster, [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto txn = client.beginTransaction();
        client.put(txn, 1, "raced");
        client.put(txn, 2, "raced");
        auto r = co_await client.commitTransaction(txn);
        EXPECT_EQ(r, CommitResult::Committed);

        // Fire several duplicate decisions at the primary while the
        // first (async) one may still be applying.
        auto &primary = cluster.primary(0);
        semel::DecisionRequest dup{txn.id(),
                                   semel::TxnDecision::Commit};
        for (int i = 0; i < 4; ++i)
            sim::spawn([](milana::MilanaServer *p,
                          semel::DecisionRequest d) -> sim::Task<void> {
                (void)co_await p->handleDecision(d);
            }(&primary, dup));
        co_await sim::sleepFor(cluster.sim(), 100 * kMillisecond);

        auto check = client.beginTransaction();
        auto v1 = co_await client.get(check, 1);
        EXPECT_EQ(v1.value, "raced");
        (void)co_await client.commitTransaction(check);
        cluster.sim().requestStop();
    });
}

TEST(Milana, CtpRacingClientDecisionConverges)
{
    // Stress the decision race at scale: many multi-key transactions
    // with an aggressive CTP scanner; everything must converge with no
    // dangling prepared entries.
    auto cfg = smallConfig(2, 1, 4);
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    drive(cluster, [&]() -> sim::Task<void> {
        auto worker = [&](std::uint32_t c) -> sim::Task<void> {
            auto &client = cluster.client(c);
            common::Rng rng(c + 5);
            for (int i = 0; i < 50; ++i) {
                auto txn = client.beginTransaction();
                for (int k = 0; k < 4; ++k)
                    client.put(txn,
                               rng.nextBounded(200),
                               "w" + std::to_string(i));
                (void)co_await client.commitTransaction(txn);
            }
        };
        for (std::uint32_t c = 0; c < 4; ++c)
            sim::spawn(worker(c));
        co_await sim::sleepFor(cluster.sim(), 5 * kSecond);
        for (common::ShardId s = 0; s < 2; ++s)
            EXPECT_EQ(cluster.primary(s).txnTable().size(), 0u);
        cluster.sim().requestStop();
    });
}
