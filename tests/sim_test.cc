/**
 * @file
 * Unit tests for the discrete-event simulation kernel: event ordering,
 * virtual time, coroutine tasks, futures, timeouts, and the
 * synchronization primitives.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/future.hh"
#include "sim/simulator.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

using namespace sim;
using common::kMicrosecond;
using common::kMillisecond;
using common::kSecond;

TEST(EventQueue, FiresInTimeOrder)
{
    Simulator s;
    std::vector<int> order;
    s.schedule(30, [&] { order.push_back(3); });
    s.schedule(10, [&] { order.push_back(1); });
    s.schedule(20, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), 30);
}

TEST(EventQueue, SameTimeIsFifo)
{
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        s.schedule(5, [&, i] { order.push_back(i); });
    s.run();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NestedSchedulingAdvancesTime)
{
    Simulator s;
    Time inner_fire = -1;
    s.schedule(10, [&] {
        s.schedule(15, [&] { inner_fire = s.now(); });
    });
    s.run();
    EXPECT_EQ(inner_fire, 25);
}

TEST(Simulator, RunUntilStopsAtBoundary)
{
    Simulator s;
    int fired = 0;
    s.schedule(10, [&] { ++fired; });
    s.schedule(20, [&] { ++fired; });
    s.schedule(30, [&] { ++fired; });
    s.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(s.now(), 20);
    s.run();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunForSetsStopRequested)
{
    Simulator s;
    bool saw_stop = false;
    std::function<void()> tick = [&] {
        if (s.stopRequested()) {
            saw_stop = true;
            return;
        }
        s.schedule(kMillisecond, tick);
    };
    s.schedule(0, tick);
    s.runFor(10 * kMillisecond);
    EXPECT_TRUE(saw_stop);
}

namespace {

Task<int>
addLater(Simulator &s, int a, int b)
{
    co_await sleepFor(s, 5 * kMicrosecond);
    co_return a + b;
}

Task<void>
outer(Simulator &s, int &result)
{
    const int x = co_await addLater(s, 2, 3);
    const int y = co_await addLater(s, x, 10);
    result = y;
}

} // namespace

TEST(Task, NestedAwaitPropagatesValues)
{
    Simulator s;
    int result = 0;
    spawn(outer(s, result));
    s.run();
    EXPECT_EQ(result, 15);
    EXPECT_EQ(s.now(), 10 * kMicrosecond);
}

TEST(Task, SpawnManyInterleave)
{
    Simulator s;
    int done = 0;
    auto worker = [&](int delay_us) -> Task<void> {
        co_await sleepFor(s, delay_us * kMicrosecond);
        ++done;
    };
    for (int i = 0; i < 50; ++i)
        spawn(worker(50 - i));
    s.run();
    EXPECT_EQ(done, 50);
}

TEST(Future, AwaitAlreadyResolved)
{
    Simulator s;
    Promise<int> p(s);
    p.set(42);
    int got = 0;
    auto reader = [&]() -> Task<void> { got = co_await p.future(); };
    spawn(reader());
    s.run();
    EXPECT_EQ(got, 42);
}

TEST(Future, MultipleWaitersAllWake)
{
    Simulator s;
    Promise<int> p(s);
    int sum = 0;
    auto reader = [&]() -> Task<void> { sum += co_await p.future(); };
    spawn(reader());
    spawn(reader());
    spawn(reader());
    s.schedule(100, [&] { p.set(7); });
    s.run();
    EXPECT_EQ(sum, 21);
}

TEST(Future, TimeoutFiresWhenUnresolved)
{
    Simulator s;
    Promise<int> p(s);
    bool timed_out = false;
    Time when = 0;
    auto reader = [&]() -> Task<void> {
        auto v = co_await p.future().withTimeout(kMillisecond);
        timed_out = !v.has_value();
        when = s.now();
    };
    spawn(reader());
    s.run();
    EXPECT_TRUE(timed_out);
    EXPECT_EQ(when, kMillisecond);
}

TEST(Future, TimeoutBeatenByValue)
{
    Simulator s;
    Promise<int> p(s);
    std::optional<int> got;
    auto reader = [&]() -> Task<void> {
        got = co_await p.future().withTimeout(kMillisecond);
    };
    spawn(reader());
    s.schedule(10 * kMicrosecond, [&] { p.set(5); });
    s.run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 5);
}

TEST(Semaphore, LimitsConcurrency)
{
    Simulator s;
    Semaphore sem(s, 2);
    int active = 0;
    int max_active = 0;
    auto worker = [&]() -> Task<void> {
        co_await sem.acquire();
        ++active;
        max_active = std::max(max_active, active);
        co_await sleepFor(s, 10 * kMicrosecond);
        --active;
        sem.release();
    };
    for (int i = 0; i < 10; ++i)
        spawn(worker());
    s.run();
    EXPECT_EQ(active, 0);
    EXPECT_EQ(max_active, 2);
    EXPECT_EQ(sem.available(), 2);
}

TEST(Semaphore, FifoWakeOrder)
{
    Simulator s;
    Semaphore sem(s, 1);
    std::vector<int> order;
    auto worker = [&](int id) -> Task<void> {
        co_await sem.acquire();
        order.push_back(id);
        co_await sleepFor(s, kMicrosecond);
        sem.release();
    };
    for (int i = 0; i < 5; ++i)
        spawn(worker(i));
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Mutex, ExclusionAcrossAwaits)
{
    Simulator s;
    Mutex m(s);
    int inside = 0;
    bool violated = false;
    auto critical = [&]() -> Task<void> {
        co_await m.lock();
        LockGuard g(m);
        if (inside != 0)
            violated = true;
        ++inside;
        co_await sleepFor(s, 3 * kMicrosecond);
        --inside;
    };
    for (int i = 0; i < 8; ++i)
        spawn(critical());
    s.run();
    EXPECT_FALSE(violated);
    EXPECT_FALSE(m.locked());
}

TEST(Quorum, WakesAtThreshold)
{
    Simulator s;
    Quorum q(s, 2);
    Time woke_at = -1;
    auto waiter = [&]() -> Task<void> {
        co_await q.wait();
        woke_at = s.now();
    };
    spawn(waiter());
    s.schedule(10, [&] { q.arrive(); });
    s.schedule(20, [&] { q.arrive(); });
    s.schedule(30, [&] { q.arrive(); }); // late arrival: accepted, no-op
    s.run();
    EXPECT_EQ(woke_at, 20);
    EXPECT_EQ(q.arrived(), 3u);
}

TEST(Quorum, AlreadySatisfiedDoesNotBlock)
{
    Simulator s;
    Quorum q(s, 1);
    q.arrive();
    bool ran = false;
    auto waiter = [&]() -> Task<void> {
        co_await q.wait();
        ran = true;
    };
    spawn(waiter());
    s.run();
    EXPECT_TRUE(ran);
}
