/**
 * @file
 * PartitionedScheduler contract tests: conservative time windows
 * deliver cross-partition events in the deterministic
 * (when, src partition, per-src seq) order regardless of worker-thread
 * count; the Fabric routes RPCs between per-partition Networks with
 * legacy-equivalent loss semantics; and — the property the whole
 * design rests on — a fig6-style Cluster scenario produces
 * byte-identical results (bench report AND merged trace export) for
 * every --sim-threads value >= 1.
 *
 * This suite doubles as the TSan gate for the partitioned runtime
 * (ctest -R tsan_partitioned_sim in a -DMILANA_SANITIZE=thread
 * build): the multi-thread cases exercise mailboxes, the window
 * barrier, and per-partition trace logs on real worker threads.
 */

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "../bench/bench_util.hh"
#include "common/chaos.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "net/network.hh"
#include "sim/partition.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

namespace {

using common::kMicrosecond;
using common::kMillisecond;
using common::kSecond;
using common::Time;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

/** (delivery time, label) observations, one vector per partition. */
using Log = std::vector<std::pair<Time, std::string>>;

/**
 * Three partitions of self-rescheduling tickers that each post a
 * message one lookahead ahead to the next partition around the ring.
 * Returns every partition's observation log.
 */
std::vector<Log>
runRing(std::uint32_t threads, Time horizon)
{
    constexpr std::uint32_t kParts = 3;
    constexpr common::Duration kLookahead = 1 * kMicrosecond;
    sim::PartitionedScheduler sched(kParts, threads, kLookahead);
    std::vector<Log> logs(kParts);

    struct Tick
    {
        sim::PartitionedScheduler *sched;
        std::vector<Log> *logs;
        std::uint32_t part;
        common::Duration period;

        void
        operator()() const
        {
            sim::Simulator &sim = sched->partition(part);
            (*logs)[part].emplace_back(sim.now(), "tick");
            const std::uint32_t dst = (part + 1) % 3;
            std::vector<Log> *ls = logs;
            const std::uint32_t src = part;
            sched->post(part, dst, sim.now() + sched->lookahead(),
                        common::TraceContext{},
                        [ls, dst, src, s = sched] {
                            (*ls)[dst].emplace_back(
                                s->partition(dst).now(),
                                "from" + std::to_string(src));
                        });
            sim.schedule(period, Tick{*this});
        }
    };

    for (std::uint32_t p = 0; p < kParts; ++p) {
        const common::Duration period = (p + 1) * kMicrosecond;
        sched.partition(p).schedule(period,
                                    Tick{&sched, &logs, p, period});
    }
    sched.runUntil(horizon);
    EXPECT_EQ(sched.now(), horizon);
    return logs;
}

TEST(PartitionedScheduler, RingIdenticalAcrossThreadCounts)
{
    const auto one = runRing(1, 200 * kMicrosecond);
    std::uint64_t observed = 0;
    for (const Log &log : one)
        observed += log.size();
    ASSERT_GT(observed, 400u); // the ring actually ran
    EXPECT_EQ(one, runRing(2, 200 * kMicrosecond));
    EXPECT_EQ(one, runRing(3, 200 * kMicrosecond));
    EXPECT_EQ(one, runRing(8, 200 * kMicrosecond)); // clamped to 3
}

TEST(PartitionedScheduler, PostAtExactlyLookaheadDelivers)
{
    sim::PartitionedScheduler sched(2, 2, 1 * kMicrosecond);
    std::vector<Time> delivered;
    // Sender ticks at t=1us and posts for t=2us (exactly lookahead
    // ahead — the tightest legal cross-partition delay).
    sched.partition(0).schedule(1 * kMicrosecond, [&sched, &delivered] {
        sched.post(0, 1,
                   sched.partition(0).now() + sched.lookahead(),
                   common::TraceContext{}, [&sched, &delivered] {
                       delivered.push_back(sched.partition(1).now());
                   });
    });
    sched.runUntil(10 * kMicrosecond);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], 2 * kMicrosecond);
}

TEST(PartitionedScheduler, MailboxMergeOrdersBySrcThenSeq)
{
    // Both partitions 0 and 2 post to partition 1 for the SAME instant;
    // the merge must order them (src 0 before src 2), and multiple
    // posts from one source must keep their post order.
    sim::PartitionedScheduler sched(3, 1, 1 * kMicrosecond);
    std::vector<std::string> order;
    const Time when = 2 * kMicrosecond;
    auto arm = [&](std::uint32_t src, const std::string &tag) {
        sched.partition(src).schedule(
            1 * kMicrosecond, [&sched, &order, src, when, tag] {
                sched.post(src, 1, when, common::TraceContext{},
                           [&order, tag] { order.push_back(tag); });
            });
    };
    arm(2, "c");
    arm(0, "a1");
    // Second post from partition 0, armed later at the same instant:
    // same (when, src), higher per-src seq.
    sched.partition(0).schedule(
        1 * kMicrosecond, [&sched, &order, when] {
            sched.post(0, 1, when, common::TraceContext{},
                       [&order] { order.push_back("a2"); });
        });
    sched.runUntil(5 * kMicrosecond);
    EXPECT_EQ(order, (std::vector<std::string>{"a1", "a2", "c"}));
}

// ---------------------------------------------- lookahead closure

TEST(PartitionedScheduler, ClosureHubTopology)
{
    // Hub-and-spoke: partition 0 is the hub, 1..3 only talk to it
    // (the fig6 layout: storage on 0, clients on the spokes).
    constexpr common::Duration kHubLa = 2 * kMicrosecond;
    sim::PartitionedScheduler sched(4, 1, 1 * kMicrosecond);
    std::vector<std::vector<common::Duration>> m(
        4, std::vector<common::Duration>(
               4, sim::PartitionedScheduler::kNoEdge));
    for (std::uint32_t c = 1; c < 4; ++c) {
        m[0][c] = kHubLa;
        m[c][0] = kHubLa;
    }
    sched.setEdgeLookahead(std::move(m));

    EXPECT_EQ(sched.edgeLookahead(0, 1), kHubLa);
    // Spokes have no direct link...
    EXPECT_EQ(sched.edgeLookahead(1, 2),
              sim::PartitionedScheduler::kNoEdge);
    // ...so spoke-to-spoke influence goes through the hub: 2us + 2us.
    EXPECT_EQ(sched.effectiveLookahead(1, 2), 2 * kHubLa);
    // Shortest cycle back into any partition is out-and-back: a spoke
    // can only constrain its own future via the hub, 4us away — twice
    // the slack a global all-pairs minimum would have granted.
    EXPECT_EQ(sched.effectiveLookahead(0, 0), 2 * kHubLa);
    EXPECT_EQ(sched.effectiveLookahead(2, 2), 2 * kHubLa);
}

TEST(PartitionedScheduler, ClosureRingTopology)
{
    // Directed ring 0 -> 1 -> 2 -> 3 -> 0, one hop per microsecond.
    constexpr common::Duration kHop = 1 * kMicrosecond;
    sim::PartitionedScheduler sched(4, 1, kHop);
    std::vector<std::vector<common::Duration>> m(
        4, std::vector<common::Duration>(
               4, sim::PartitionedScheduler::kNoEdge));
    for (std::uint32_t p = 0; p < 4; ++p)
        m[p][(p + 1) % 4] = kHop;
    sched.setEdgeLookahead(std::move(m));

    // Forward hops accumulate; the reverse direction must go the long
    // way around.
    EXPECT_EQ(sched.effectiveLookahead(0, 1), kHop);
    EXPECT_EQ(sched.effectiveLookahead(0, 3), 3 * kHop);
    EXPECT_EQ(sched.effectiveLookahead(3, 0), kHop);
    EXPECT_EQ(sched.edgeLookahead(0, 2),
              sim::PartitionedScheduler::kNoEdge);
    EXPECT_EQ(sched.effectiveLookahead(0, 2), 2 * kHop);
    // A partition can only reach itself around the whole ring.
    for (std::uint32_t p = 0; p < 4; ++p)
        EXPECT_EQ(sched.effectiveLookahead(p, p), 4 * kHop);
}

// ---------------------------------------------- idle-gap skipping

TEST(PartitionedScheduler, IdleGapSkipHonorsExactBound)
{
    // Two partitions linked both ways at 1us. Partition 0's only
    // event sits at 10us — a 10us idle gap the adaptive engine must
    // jump — and it posts to partition 1 at exactly the edge
    // lookahead. Partition 1 already holds a local event at that same
    // instant; the local event was scheduled first, so it must run
    // first (the same-instant FIFO the mailbox merge guarantees).
    constexpr common::Duration kLa = 1 * kMicrosecond;
    sim::PartitionedScheduler sched(2, 1, kLa);
    std::vector<std::vector<common::Duration>> m(
        2, std::vector<common::Duration>(
               2, sim::PartitionedScheduler::kNoEdge));
    m[0][1] = m[1][0] = kLa;
    sched.setEdgeLookahead(std::move(m));

    std::vector<std::pair<Time, std::string>> got;
    sched.partition(1).scheduleAt(11 * kMicrosecond, [&] {
        got.emplace_back(sched.partition(1).now(), "local");
    });
    sched.partition(0).scheduleAt(10 * kMicrosecond, [&] {
        sched.post(0, 1, sched.partition(0).now() + kLa,
                   common::TraceContext{}, [&] {
                       got.emplace_back(sched.partition(1).now(),
                                        "posted");
                   });
    });
    sched.runUntil(20 * kMicrosecond);

    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], (std::pair<Time, std::string>{
                          11 * kMicrosecond, "local"}));
    EXPECT_EQ(got[1], (std::pair<Time, std::string>{
                          11 * kMicrosecond, "posted"}));
    // The 0..10us stretch held no events anywhere: the engine must
    // have jumped it rather than crossing one barrier per lookahead.
    EXPECT_GE(sched.windowsSkipped(), 5u);
    EXPECT_LT(sched.windowsExecuted(), 10u);
}

TEST(PartitionedScheduler, PostIntoSkippedGapStillDelivers)
{
    // Partition 1's next local event is far away (100us). Partition 0
    // ticks at 5us and posts for 6us — inside what, from partition
    // 1's local queue alone, looks like a dead gap. The engine may
    // never grant partition 1 a window past 6us before observing the
    // post: delivery must happen at 6us, before the 100us local.
    constexpr common::Duration kLa = 1 * kMicrosecond;
    sim::PartitionedScheduler sched(2, 1, kLa);
    std::vector<std::vector<common::Duration>> m(
        2, std::vector<common::Duration>(
               2, sim::PartitionedScheduler::kNoEdge));
    m[0][1] = m[1][0] = kLa;
    sched.setEdgeLookahead(std::move(m));

    std::vector<std::pair<Time, std::string>> got;
    sched.partition(1).scheduleAt(100 * kMicrosecond, [&] {
        got.emplace_back(sched.partition(1).now(), "far");
    });
    sched.partition(0).scheduleAt(5 * kMicrosecond, [&] {
        sched.post(0, 1, sched.partition(0).now() + kLa,
                   common::TraceContext{}, [&] {
                       got.emplace_back(sched.partition(1).now(),
                                        "posted");
                   });
    });
    sched.runUntil(200 * kMicrosecond);

    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], (std::pair<Time, std::string>{
                          6 * kMicrosecond, "posted"}));
    EXPECT_EQ(got[1], (std::pair<Time, std::string>{
                          100 * kMicrosecond, "far"}));
}

/** Two-partition Fabric: server node 7 on partition 0, client node
 *  1000 on partition 1. */
struct RpcRig
{
    sim::PartitionedScheduler sched;
    net::NetConfig cfg;
    net::Fabric fabric;
    net::Network net0;
    net::Network net1;

    explicit RpcRig(std::uint32_t threads)
        : sched(2, threads, net::NetConfig{}.minLatency),
          fabric(sched, cfg),
          net0(sched.partition(0), cfg, common::Rng(1), fabric, 0),
          net1(sched.partition(1), cfg, common::Rng(2), fabric, 1)
    {
        fabric.registerNetwork(0, &net0);
        fabric.registerNetwork(1, &net1);
        fabric.setPartition(7, 0);
        fabric.setPartition(1000, 1);
    }
};

sim::Task<int>
echoHandler(sim::Simulator &sim, int value)
{
    // A little server-side work so the handler demonstrably runs on
    // the destination partition's clock.
    co_await sim::sleepFor(sim, 10 * kMicrosecond);
    co_return value;
}

TEST(Fabric, CrossPartitionRpcRoundTrip)
{
    for (std::uint32_t threads : {1u, 2u}) {
        RpcRig rig(threads);
        std::optional<int> got;
        Time done = 0;
        sim::spawn([](RpcRig *rig, std::optional<int> *got,
                      Time *done) -> sim::Task<void> {
            auto resp = co_await rig->net1.callTyped<int>(
                1000, 7,
                echoHandler(rig->sched.partition(0), 42));
            *got = resp.value_or(-1);
            *done = rig->sched.partition(1).now();
        }(&rig, &got, &done));
        rig.sched.runUntil(kSecond);
        ASSERT_TRUE(got.has_value()) << "threads=" << threads;
        EXPECT_EQ(*got, 42);
        // Two legs at >= minLatency each plus 10us of handler time.
        EXPECT_GE(done, 2 * rig.cfg.minLatency + 10 * kMicrosecond);
    }
}

TEST(Fabric, RpcToDownNodeTimesOutWithNullopt)
{
    RpcRig rig(2);
    rig.fabric.setNodeDown(7, true);
    bool ran = false;
    std::optional<int> got = 123;
    Time done = 0;
    sim::spawn([](RpcRig *rig, bool *ran, std::optional<int> *got,
                  Time *done) -> sim::Task<void> {
        *got = co_await rig->net1.callTyped<int>(
            1000, 7, echoHandler(rig->sched.partition(0), 42));
        *ran = true;
        *done = rig->sched.partition(1).now();
    }(&rig, &ran, &got, &done));
    rig.sched.runUntil(kSecond);
    ASSERT_TRUE(ran);
    EXPECT_FALSE(got.has_value());
    // The caller observes the failure only after the RPC timeout, as
    // in the classic single-simulator path.
    EXPECT_GE(done, rig.cfg.rpcTimeout);
}

/** One fig6-style cell under a given simThreads; returns the bench
 *  report plus the merged trace JSON export. */
std::pair<std::string, std::string>
runPartitionedCell(std::uint32_t sim_threads)
{
    common::TraceLog trace(1 << 15);

    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 1;
    cfg.numClients = 8;
    cfg.backend = BackendKind::Mftl;
    cfg.clocks = ClockKind::Perfect;
    cfg.numKeys = 500;
    cfg.seed = 1;
    cfg.simThreads = sim_threads;
    cfg.trace = &trace;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = 0.8;
    retwis.numKeys = cfg.numKeys;
    retwis.seed = cfg.seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.runUntil(cluster.now() + kSecond / 4);
    fleet.resetMeasurement();
    cluster.resetStats();
    cluster.runFor(kSecond / 2);
    cluster.finishTrace();

    bench::Report report("partitioned_sim_test");
    report.params().set("keys", cfg.numKeys).set("seed", cfg.seed);
    report.addRow()
        .set("commits", fleet.totalCommits())
        .set("aborts", fleet.totalAborts())
        .set("abort_pct", fleet.abortRate() * 100.0);
    report.addStats("client", cluster.clientStats(), "client.");
    report.addStats("server", cluster.serverStats(), "server.");
    std::ostringstream ros;
    report.writeTo(ros);

    std::ostringstream tos;
    trace.writeJson(tos);
    EXPECT_GT(trace.size(), 0u);
    return {ros.str(), tos.str()};
}

TEST(PartitionedCluster, ReportAndTraceBytesIdenticalAcrossSimThreads)
{
    const auto one = runPartitionedCell(1);
    EXPECT_FALSE(one.first.empty());
    const auto two = runPartitionedCell(2);
    EXPECT_EQ(one.first, two.first);
    EXPECT_EQ(one.second, two.second);
    const auto eight = runPartitionedCell(8);
    EXPECT_EQ(one.first, eight.first);
    EXPECT_EQ(one.second, eight.second);
}

/**
 * Same cell with a chaos schedule on top. Fault mutations may only
 * land at quiescent points, so the run façade clamps every window at
 * ChaosEngine::nextActionAt(); the test pins that clamp down: report,
 * trace AND the scheduler's own window/skip/barrier counters must be
 * byte-identical for every thread count even while faults fire inside
 * otherwise-skippable idle gaps.
 */
std::pair<std::string, std::string>
runChaosCell(std::uint32_t sim_threads)
{
    common::TraceLog trace(1 << 15);
    common::ChaosEngine chaos(42);
    std::string err;
    EXPECT_TRUE(chaos.parse(
        "at 50ms delay all factor=8 for 100ms\n"
        "at 80ms partition client:1 servers for 60ms",
        &err))
        << err;

    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 1;
    cfg.numClients = 6;
    cfg.backend = BackendKind::Mftl;
    cfg.clocks = ClockKind::Perfect;
    cfg.numKeys = 400;
    cfg.seed = 2;
    cfg.simThreads = sim_threads;
    cfg.trace = &trace;
    cfg.chaos = &chaos;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = 0.8;
    retwis.numKeys = cfg.numKeys;
    retwis.seed = cfg.seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.runUntil(cluster.now() + 100 * kMillisecond);
    fleet.resetMeasurement();
    cluster.resetStats();
    chaos.arm(cluster.now());
    cluster.runFor(250 * kMillisecond);
    cluster.finishTrace();
    EXPECT_GT(chaos.injections(), 0u);

    const Cluster::SchedStats sched = cluster.schedStats();
    EXPECT_GT(sched.windows, 0u);
    EXPECT_GT(sched.skipped, 0u);

    bench::Report report("partitioned_chaos_test");
    report.addRow()
        .set("commits", fleet.totalCommits())
        .set("aborts", fleet.totalAborts())
        .set("sched_windows", sched.windows)
        .set("sched_windows_skipped", sched.skipped)
        .set("sched_barriers", sched.barriers)
        .set("sched_events", sched.events);
    report.addStats("client", cluster.clientStats(), "client.");
    report.addStats("server", cluster.serverStats(), "server.");
    std::ostringstream ros;
    report.writeTo(ros);

    std::ostringstream tos;
    trace.writeJson(tos);
    EXPECT_GT(trace.size(), 0u);
    return {ros.str(), tos.str()};
}

TEST(PartitionedCluster, ChaosClampByteIdenticalAcrossSimThreads)
{
    const auto one = runChaosCell(1);
    EXPECT_FALSE(one.first.empty());
    const auto two = runChaosCell(2);
    EXPECT_EQ(one.first, two.first);
    EXPECT_EQ(one.second, two.second);
    const auto eight = runChaosCell(8);
    EXPECT_EQ(one.first, eight.first);
    EXPECT_EQ(one.second, eight.second);
}

TEST(PartitionedCluster, WorkloadActuallyCommits)
{
    // Guard against the identity test passing on three identical
    // empty runs.
    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 1;
    cfg.numClients = 4;
    cfg.backend = BackendKind::Mftl;
    cfg.clocks = ClockKind::Perfect;
    cfg.numKeys = 500;
    cfg.seed = 3;
    cfg.simThreads = 2;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    RetwisConfig retwis;
    retwis.numKeys = cfg.numKeys;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();
    cluster.runFor(kSecond / 2);
    EXPECT_GT(fleet.totalCommits(), 100u);
}

} // namespace
