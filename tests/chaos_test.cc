/**
 * @file
 * Chaos engine tests: the schedule DSL (field coverage and error line
 * numbers), deterministic replay against a recording sink, clock
 * faults (skew raised, clock-suspect abort path tripped, commit-ts
 * monotonicity preserved under the invariant monitor), SSD gray
 * failure hooks, and the link-partition heal regression in
 * partitioned net::Fabric mode across worker-thread counts.
 */

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "clocksync/sync.hh"
#include "common/chaos.hh"
#include "common/invariant_monitor.hh"
#include "common/trace.hh"
#include "flash/ssd.hh"
#include "milana/client.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::ChaosEngine;
using common::ChaosSink;
using common::FaultKind;
using common::FaultSpec;
using common::kMillisecond;
using common::kSecond;
using common::NodeSel;
using milana::CommitResult;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

namespace {

// --------------------------------------------------------------- DSL

TEST(ChaosDsl, ParsesFullVocabulary)
{
    ChaosEngine e;
    std::string err;
    const char *text =
        "# full fault vocabulary, one of each verb\n"
        "at 100ms crash backup:0:1 for 200ms failover name=b-down\n"
        "at 1s partition client:2 servers for 50ms oneway\n"
        "at 2s delay all factor=8 for 100ms\n"
        "at 3s clock-step clock:1 by=4ms for 10ms\n"
        "at 4s clock-stuck clock:0 for 20ms\n"
        "at 5s clock-drift clock:2 ppm=500 for 30ms\n"
        "at 6s master-down for 40ms\n"
        "at 7s ssd-slow node:1 channel=3 factor=20 for 50ms\n"
        "at 8s ssd-retry servers prob=0.5 retries=4 for 60ms\n"
        "at 9s ssd-gc servers for 70ms\n";
    ASSERT_TRUE(e.parse(text, &err)) << err;
    ASSERT_EQ(e.faultCount(), 10u);
    const auto &f = e.faults();

    EXPECT_EQ(f[0].kind, FaultKind::NodeCrash);
    EXPECT_EQ(f[0].at, 100 * kMillisecond);
    EXPECT_EQ(f[0].duration, 200 * kMillisecond);
    EXPECT_EQ(f[0].selA.kind, NodeSel::Kind::Backup);
    EXPECT_EQ(f[0].selA.index, 0);
    EXPECT_EQ(f[0].selA.sub, 1);
    EXPECT_TRUE(f[0].failover);
    EXPECT_EQ(f[0].name, "b-down");

    EXPECT_EQ(f[1].kind, FaultKind::LinkPartition);
    EXPECT_TRUE(f[1].oneway);
    EXPECT_EQ(f[1].selA.kind, NodeSel::Kind::Client);
    EXPECT_EQ(f[1].selA.index, 2);
    EXPECT_EQ(f[1].selB.kind, NodeSel::Kind::AllServers);

    EXPECT_EQ(f[2].kind, FaultKind::LinkDelay);
    EXPECT_DOUBLE_EQ(f[2].magnitude, 8.0);
    EXPECT_EQ(f[2].selA.kind, NodeSel::Kind::All);

    EXPECT_EQ(f[3].kind, FaultKind::ClockStep);
    EXPECT_DOUBLE_EQ(f[3].magnitude,
                     static_cast<double>(4 * kMillisecond));

    EXPECT_EQ(f[4].kind, FaultKind::ClockStuck);
    EXPECT_EQ(f[5].kind, FaultKind::ClockDrift);
    EXPECT_DOUBLE_EQ(f[5].magnitude, 500.0);
    EXPECT_EQ(f[6].kind, FaultKind::ClockMasterDown);

    EXPECT_EQ(f[7].kind, FaultKind::SsdSlowChannel);
    EXPECT_EQ(f[7].channel, 3);
    EXPECT_DOUBLE_EQ(f[7].magnitude, 20.0);

    EXPECT_EQ(f[8].kind, FaultKind::SsdReadRetry);
    EXPECT_DOUBLE_EQ(f[8].magnitude, 0.5);
    EXPECT_EQ(f[8].retries, 4);

    EXPECT_EQ(f[9].kind, FaultKind::SsdGcStorm);
    EXPECT_EQ(f[9].name, "ssd-gc"); // default name = verb
}

TEST(ChaosDsl, ErrorsNameTheLine)
{
    std::string err;
    ChaosEngine bad_verb;
    EXPECT_FALSE(bad_verb.parse("at 10ms frobnicate all", &err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;

    ChaosEngine later_line;
    EXPECT_FALSE(later_line.parse(
        "# comment\nat 5ms crash node:0\nat 6ms partition\n", &err));
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;

    ChaosEngine missing_sel;
    EXPECT_FALSE(missing_sel.parse("at 5ms clock-step by=1ms", &err));
    ChaosEngine bad_prob;
    EXPECT_FALSE(bad_prob.parse("at 5ms ssd-retry servers prob=1.5",
                                &err));
    ChaosEngine bad_time;
    EXPECT_FALSE(bad_time.parse("at soon crash node:0", &err));
}

// ------------------------------------------------------------ replay

struct RecordingSink : ChaosSink
{
    std::vector<std::pair<std::string, bool>> events;
    void
    applyFault(const FaultSpec &fault, bool start) override
    {
        events.emplace_back(fault.name, start);
    }
};

TEST(ChaosEngineReplay, AppliesInOrderAndRewindsIdentically)
{
    ChaosEngine e(7);
    std::string err;
    ASSERT_TRUE(e.parse("at 10ms delay all factor=2 for 30ms\n"
                        "at 20ms clock-stuck clock:0 for 5ms\n"
                        "at 15ms ssd-gc servers\n",
                        &err))
        << err;

    // Unarmed: nothing pending, applyUntil is a no-op.
    RecordingSink sink;
    EXPECT_EQ(e.nextActionAt(), -1);
    e.applyUntil(10 * kSecond, sink);
    EXPECT_TRUE(sink.events.empty());

    e.arm(1 * kSecond);
    EXPECT_EQ(e.nextActionAt(), 1 * kSecond + 10 * kMillisecond);
    e.applyUntil(1 * kSecond + 9 * kMillisecond, sink);
    EXPECT_TRUE(sink.events.empty());

    e.applyUntil(1 * kSecond + 25 * kMillisecond, sink);
    const std::vector<std::pair<std::string, bool>> expected = {
        {"delay", true},
        {"ssd-gc", true},
        {"clock-stuck", true},
        {"clock-stuck", false}, // heals at exactly 25ms
    };
    EXPECT_EQ(sink.events, expected);
    EXPECT_EQ(e.activeCount(), 2u);
    EXPECT_TRUE(e.netFaultActive());
    EXPECT_TRUE(e.flashFaultActive());
    EXPECT_FALSE(e.clockFaultActive());
    EXPECT_EQ(e.activeFaultName(), "ssd-gc"); // most recent active

    e.applyUntil(10 * kSecond, sink);
    EXPECT_TRUE(e.done());
    EXPECT_EQ(e.injections(), 3u);
    EXPECT_EQ(e.heals(), 2u); // ssd-gc has no duration: never healed
    EXPECT_EQ(e.activeCount(), 1u);

    // rewind + re-arm replays the same sequence.
    const auto first = sink.events;
    sink.events.clear();
    e.rewind();
    EXPECT_EQ(e.nextActionAt(), -1);
    e.arm(2 * kSecond);
    e.applyUntil(3 * kSecond, sink);
    EXPECT_EQ(sink.events, first);
}

// ------------------------------------------------------ clock faults

TEST(ChaosClockFaults, StepStuckAndDriftRaiseSkew)
{
    sim::Simulator s;
    common::Rng rng(42);
    clocksync::ClockEnsemble ens(s, 3,
                                 clocksync::SyncConfig::ptpSoftware(),
                                 rng);
    ens.start();
    s.runUntil(200 * kMillisecond);

    const auto base = ens.instantaneousMaxPairwiseSkew();
    ens.driftClock(0).step(2 * kMillisecond);
    EXPECT_GE(ens.instantaneousMaxPairwiseSkew(), base + kMillisecond);

    // Stuck: local time freezes until healed.
    ens.driftClock(1).setStuck(true);
    const auto frozen = ens.clock(1).localNow();
    s.runUntil(s.now() + 50 * kMillisecond);
    EXPECT_EQ(ens.clock(1).localNow(), frozen);
    ens.driftClock(1).setStuck(false);
    s.runUntil(s.now() + 10 * kMillisecond);
    EXPECT_GT(ens.clock(1).localNow(), frozen);

    // Runaway drift with the master down (holdover: no corrections):
    // 1000 ppm over 200 ms opens ~200 us against an undisturbed peer.
    ens.setMasterDown(true);
    const auto before = ens.clock(2).localNow() - ens.clock(0).localNow();
    ens.driftClock(2).injectDriftPpm(1000.0);
    s.runUntil(s.now() + 200 * kMillisecond);
    const auto after = ens.clock(2).localNow() - ens.clock(0).localNow();
    EXPECT_GE(after - before, 150 * 1000 /* ns */);
    ens.setMasterDown(false);
}

TEST(ChaosClockFaults, ClusterStepTripsClockSuspectNotMonotonicity)
{
    common::TraceLog trace(1u << 16);
    common::InvariantMonitor::Config mcfg;
    mcfg.checkSnapshotReads = true;
    mcfg.checkReplicationBeforeAck = true;
    common::InvariantMonitor monitor(mcfg, nullptr);
    monitor.attach(trace);

    ChaosEngine chaos(42);
    std::string err;
    ASSERT_TRUE(chaos.parse("at 20ms clock-step clock:0 by=3ms for 200ms",
                            &err))
        << err;

    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 3;
    cfg.numClients = 8;
    cfg.backend = BackendKind::Mftl;
    cfg.clocks = ClockKind::PtpSw;
    cfg.numKeys = 300;
    cfg.seed = 5;
    cfg.trace = &trace;
    cfg.chaos = &chaos;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = 0.9;
    retwis.numKeys = cfg.numKeys;
    retwis.seed = cfg.seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.runUntil(cluster.now() + 300 * kMillisecond);
    fleet.resetMeasurement();
    cluster.resetStats();
    chaos.arm(cluster.now());
    cluster.runFor(300 * kMillisecond);
    cluster.finishTrace();

    EXPECT_EQ(monitor.violationCount(), 0u);
    EXPECT_EQ(chaos.injections(), 1u);
    EXPECT_EQ(chaos.heals(), 1u);
    EXPECT_GT(fleet.totalCommits(), 100u);
    // While the step is active, stale-timestamp aborts are classified
    // as ClockSuspect on the server — the fault-aware abort path.
    EXPECT_GT(cluster.serverStats().counterValue(
                  "milana.abort_clock_suspect"),
              0u);
}

// -------------------------------------------------------- SSD faults

flash::Geometry
smallGeometry()
{
    flash::Geometry g;
    g.numBlocks = 8;
    g.pagesPerBlock = 4;
    g.numChannels = 2;
    g.queueDepth = 4;
    return g;
}

flash::PageData
pageWith(std::uint64_t key)
{
    flash::PageData d;
    flash::Record r;
    r.key = key;
    r.value = "v";
    d.records.push_back(r);
    return d;
}

TEST(ChaosSsdFaults, ReadRetryStormCountsRetriesDeterministically)
{
    sim::Simulator s;
    flash::SsdDevice ssd(s, smallGeometry());
    ssd.setFaultRng(common::Rng(7));

    sim::spawn([](sim::Simulator *s, flash::SsdDevice *ssd)
                   -> sim::Task<void> {
        co_await ssd->programPage({0, 0}, pageWith(1));
        for (int i = 0; i < 20; ++i)
            (void)co_await ssd->readPage({0, 0});
        ssd->setReadRetryStorm(1.0, 3);
        for (int i = 0; i < 20; ++i)
            (void)co_await ssd->readPage({0, 0});
        ssd->setReadRetryStorm(0.0, 0);
        (void)s;
    }(&s, &ssd));
    s.run();

    // P(retry)=1 with up to 3 extra attempts: every stormed read
    // retried at least once; none before the storm.
    const auto retries = ssd.stats().counterValue("ssd.read_retries");
    EXPECT_GE(retries, 20u);
    EXPECT_LE(retries, 60u);

    // Same seed, same sequence: the storm replays identically.
    sim::Simulator s2;
    flash::SsdDevice ssd2(s2, smallGeometry());
    ssd2.setFaultRng(common::Rng(7));
    sim::spawn([](flash::SsdDevice *ssd) -> sim::Task<void> {
        co_await ssd->programPage({0, 0}, pageWith(1));
        for (int i = 0; i < 20; ++i)
            (void)co_await ssd->readPage({0, 0});
        ssd->setReadRetryStorm(1.0, 3);
        for (int i = 0; i < 20; ++i)
            (void)co_await ssd->readPage({0, 0});
        ssd->setReadRetryStorm(0.0, 0);
    }(&ssd2));
    s2.run();
    EXPECT_EQ(ssd2.stats().counterValue("ssd.read_retries"), retries);
}

TEST(ChaosSsdFaults, GcStormOccupiesChannelsUntilStopped)
{
    sim::Simulator s;
    flash::SsdDevice ssd(s, smallGeometry());
    ssd.setFaultRng(common::Rng(9));

    ssd.startGcStorm();
    s.runUntil(5 * kMillisecond);
    ssd.stopGcStorm();
    const auto during = ssd.stats().counterValue("ssd.gc_storm_ops");
    EXPECT_GT(during, 0u);
    EXPECT_EQ(ssd.stats().counterValue("ssd.gc_storms"), 1u);

    s.runFor(5 * kMillisecond, kMillisecond);
    EXPECT_EQ(ssd.stats().counterValue("ssd.gc_storm_ops"), during);
}

// --------------------------- partition heal (net::Fabric regression)

struct ProbeResult
{
    bool done = false;
    bool ok = false;
};

/**
 * One read-modify-write transaction on @p client_index. @p attempts > 1
 * retries so cold-key contention can't fail a healthy probe; the
 * mid-fault probe uses a single attempt, because every failed attempt
 * burns an rpcTimeout and a retry loop would straddle the heal.
 */
sim::Task<void>
probeTxn(Cluster *cluster, std::uint32_t client_index, int attempts,
         ProbeResult *out)
{
    auto &client = cluster->client(client_index);
    const common::Key key = cluster->config().numKeys - 1;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        auto txn = client.beginTransaction();
        auto r = co_await client.get(txn, key);
        if (!r.ok) {
            client.abortTransaction(txn);
            continue; // unreachable server; retry if allowed
        }
        client.put(txn, key, "probe");
        if (co_await client.commitTransaction(txn) ==
            CommitResult::Committed) {
            out->done = true;
            out->ok = true;
            co_return;
        }
    }
    out->done = true;
    out->ok = false;
}

struct HealCell
{
    ProbeResult pre, during, post;
    std::string report; ///< commit/abort counters, for cross-thread cmp
    std::uint64_t violations = 0;
    std::uint64_t faultAborts = 0; ///< txns that died while fault active
    std::uint64_t eventsLost = 0;
};

/**
 * Partitioned-mode cluster (net::Fabric) with a scheduled
 * client-1 <-> servers partition. Probes client 1 before, during, and
 * after the fault window; background Retwis traffic keeps every
 * mailbox busy so stale cross-partition messages would surface.
 */
HealCell
runHealCell(std::uint32_t sim_threads, bool oneway)
{
    common::TraceLog trace(1u << 18);
    common::InvariantMonitor monitor({}, nullptr);
    monitor.attach(trace);

    ChaosEngine chaos(11);
    std::string err;
    const char *schedule =
        oneway ? "at 30ms partition client:1 servers oneway for 60ms"
               : "at 30ms partition client:1 servers for 60ms";
    EXPECT_TRUE(chaos.parse(schedule, &err)) << err;

    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 1;
    cfg.numClients = 4;
    cfg.backend = BackendKind::Mftl;
    cfg.clocks = ClockKind::Perfect;
    cfg.numKeys = 500;
    cfg.seed = 21;
    cfg.simThreads = sim_threads;
    cfg.trace = &trace;
    cfg.chaos = &chaos;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = 0.8;
    retwis.numKeys = cfg.numKeys;
    retwis.seed = cfg.seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.runUntil(cluster.now() + 100 * kMillisecond);
    fleet.resetMeasurement();
    cluster.resetStats();
    chaos.arm(cluster.now());
    const common::Time origin = cluster.now();

    HealCell cell;
    // Pre-fault probe: completes well before the 30ms injection.
    sim::spawn(probeTxn(&cluster, 1, 5, &cell.pre));
    cluster.runUntil(origin + 25 * kMillisecond);
    // Mid-fault probe (single attempt — a retry loop would straddle
    // the heal): the partition is active 30ms..90ms. The read may be
    // served by the client's inter-txn cache, but the commit's prepare
    // RPC crosses the broken link and must fail.
    cluster.runUntil(origin + 35 * kMillisecond);
    sim::spawn(probeTxn(&cluster, 1, 1, &cell.during));
    cluster.runUntil(origin + 85 * kMillisecond);
    // Post-heal probe.
    cluster.runUntil(origin + 95 * kMillisecond);
    sim::spawn(probeTxn(&cluster, 1, 5, &cell.post));
    cluster.runFor(60 * kMillisecond, 200 * kMillisecond);
    cluster.finishTrace();

    std::ostringstream os;
    os << "commits=" << fleet.totalCommits()
       << " aborts=" << fleet.totalAborts()
       << " injections=" << chaos.injections()
       << " heals=" << chaos.heals();
    cell.report = os.str();
    cell.violations = monitor.violationCount();
    cell.faultAborts =
        cluster.clientStats().counterValue("txn.fault_active_aborts");
    cell.eventsLost = cluster.traceEventsLost();
    return cell;
}

class PartitionHeal
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PartitionHeal, RpcsFailDuringWindowAndSucceedAfterHeal)
{
    const HealCell cell = runHealCell(GetParam(), false);
    EXPECT_TRUE(cell.pre.done);
    EXPECT_TRUE(cell.pre.ok);
    EXPECT_TRUE(cell.during.done);
    EXPECT_FALSE(cell.during.ok);
    EXPECT_TRUE(cell.post.done);
    EXPECT_TRUE(cell.post.ok);
    EXPECT_GT(cell.faultAborts, 0u);
    EXPECT_EQ(cell.violations, 0u);
    EXPECT_EQ(cell.eventsLost, 0u);
}

TEST(PartitionHeal, ByteIdenticalAcrossSimThreads)
{
    const HealCell one = runHealCell(1, false);
    const HealCell two = runHealCell(2, false);
    const HealCell eight = runHealCell(8, false);
    EXPECT_EQ(one.report, two.report);
    EXPECT_EQ(one.report, eight.report);
    EXPECT_EQ(one.violations, 0u);
}

TEST(PartitionHeal, OnewayPartitionAlsoHealsCleanly)
{
    const HealCell cell = runHealCell(2, true);
    EXPECT_TRUE(cell.pre.ok);
    EXPECT_FALSE(cell.during.ok);
    EXPECT_TRUE(cell.post.ok);
    EXPECT_EQ(cell.violations, 0u);
}

// ------------------------------------------------ scenario determinism

TEST(ChaosCluster, SameScheduleAndSeedReplaysExactly)
{
    auto run = [] {
        ChaosEngine chaos(17);
        std::string err;
        EXPECT_TRUE(chaos.parse(
            "at 20ms crash backup:0:0 for 40ms\n"
            "at 30ms delay all factor=4 for 30ms\n",
            &err))
            << err;
        ClusterConfig cfg;
        cfg.numShards = 1;
        cfg.replicasPerShard = 3;
        cfg.numClients = 4;
        cfg.backend = BackendKind::Mftl;
        cfg.clocks = ClockKind::Perfect;
        cfg.numKeys = 400;
        cfg.seed = 9;
        cfg.chaos = &chaos;
        Cluster cluster(cfg);
        cluster.populate();
        cluster.start();
        RetwisConfig retwis;
        retwis.numKeys = cfg.numKeys;
        retwis.seed = cfg.seed + 100;
        RetwisWorkload fleet(cluster, retwis);
        fleet.start();
        cluster.runUntil(cluster.now() + 100 * kMillisecond);
        fleet.resetMeasurement();
        cluster.resetStats();
        chaos.arm(cluster.now());
        cluster.runFor(200 * kMillisecond);
        return std::make_tuple(fleet.totalCommits(),
                               fleet.totalAborts(),
                               chaos.injections(), chaos.heals());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a, b);
    EXPECT_GT(std::get<0>(a), 50u);
    EXPECT_EQ(std::get<2>(a), 2u);
    EXPECT_EQ(std::get<3>(a), 2u);
}

} // namespace

INSTANTIATE_TEST_SUITE_P(SimThreads, PartitionHeal,
                         ::testing::Values(1u, 2u, 8u));
